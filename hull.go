package parhull

import (
	"fmt"

	"parhull/internal/conmap"
	"parhull/internal/engine"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
)

// Hull2DResult is the output of Hull2D.
type Hull2DResult struct {
	// Vertices lists the hull vertices in counterclockwise order, as
	// indices into the input slice.
	Vertices []int
	Stats    Stats
}

// Hull2D computes the convex hull of 2D points with the selected engine.
// Points are inserted in input order unless Options.Shuffle is set (which
// the Theorem 1.1 depth guarantee assumes). The input must contain at least
// 3 points in general position.
//
// Errors are typed: see ErrDegenerate, ErrBadCoordinate, ErrCapacity,
// ErrCanceled, ErrBadOption. A fixed CAS/TAS ridge table that fills is
// handled by the degradation ladder (doubled-table retries, then a sharded-
// map fallback) unless Options.NoMapFallback is set; see
// Stats.CapacityRetries and Stats.MapFallback.
func Hull2D(pts []Point, opt *Options) (out *Hull2DResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)
	phWork, phOrder, phBlocks, phKept, err := o.maybePreHull(work, order, 2)
	if err != nil {
		return nil, wrapErr(err)
	}
	work, order = phWork, phOrder

	var res *hull2d.Result
	var retries int
	var fellBack bool
	switch o.Engine {
	case EngineSequential:
		res, err = hull2d.SeqCtx(o.Context, nil, work, o.NoPlaneCache)
	case EngineParallel, EngineRounds:
		run := func(m conmap.RidgeMap[*hull2d.Facet]) (*hull2d.Result, error) {
			ho := &hull2d.Options{
				Map:          m,
				Sched:        o.schedKind(),
				GroupLimit:   o.GroupLimit,
				Workers:      o.Workers,
				NoCounters:   o.NoCounters,
				FilterGrain:  o.FilterGrain,
				NoPlaneCache: o.NoPlaneCache,
				Ctx:          o.Context,
			}
			if o.Engine == EngineRounds {
				r, _, e := hull2d.Rounds(work, ho)
				return r, e
			}
			return hull2d.Par(work, ho)
		}
		res, retries, fellBack, err = ladder(o,
			o.capacity(engine.FixedMapCapacity(len(work), 0)),
			o.fixed2D,
			func() conmap.RidgeMap[*hull2d.Facet] {
				return conmap.NewShardedMap[*hull2d.Facet](o.capacity(engine.DefaultMapCapacity(len(work), 0)))
			},
			run)
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	res.Stats.CapacityRetries = retries
	res.Stats.MapFallback = fellBack
	res.Stats.PreHullBlocks = phBlocks
	res.Stats.PreHullKept = phKept
	out = &Hull2DResult{Stats: res.Stats}
	for _, v := range res.Vertices {
		out.Vertices = append(out.Vertices, mapBack(v, order))
	}
	return out, nil
}

// Facet is one facet of a d-dimensional hull: the indices of its d defining
// points in the input slice.
type Facet struct {
	Vertices []int
}

// HullDResult is the output of HullD / Hull3D.
type HullDResult struct {
	// Facets are the hull facets (oriented d-simplices).
	Facets []Facet
	// Vertices are the sorted indices of points on the hull.
	Vertices []int
	Stats    Stats
}

// HullD computes the convex hull in the dimension given by the points
// (d = len(pts[0]) >= 2). The input must contain at least d+1 points in
// general position. See Hull2D for ordering semantics and the typed error
// surface / degradation ladder.
func HullD(pts []Point, opt *Options) (out *HullDResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}
	phWork, phOrder, phBlocks, phKept, err := o.maybePreHull(work, order, d)
	if err != nil {
		return nil, wrapErr(err)
	}
	work, order = phWork, phOrder

	var res *hulld.Result
	var retries int
	var fellBack bool
	switch o.Engine {
	case EngineSequential:
		res, err = hulld.SeqCtx(o.Context, nil, work, o.NoPlaneCache)
	case EngineParallel, EngineRounds:
		run := func(m conmap.RidgeMap[*hulld.Facet]) (*hulld.Result, error) {
			ho := &hulld.Options{
				Map:          m,
				Sched:        o.schedKind(),
				GroupLimit:   o.GroupLimit,
				Workers:      o.Workers,
				NoCounters:   o.NoCounters,
				FilterGrain:  o.FilterGrain,
				NoPlaneCache: o.NoPlaneCache,
				Ctx:          o.Context,
			}
			if o.Engine == EngineRounds {
				return hulld.Rounds(work, ho)
			}
			return hulld.Par(work, ho)
		}
		res, retries, fellBack, err = ladder(o,
			o.capacity(engine.FixedMapCapacity(len(work), d)),
			o.fixedD,
			func() conmap.RidgeMap[*hulld.Facet] {
				return conmap.NewShardedMap[*hulld.Facet](o.capacity(engine.DefaultMapCapacity(len(work), d)))
			},
			run)
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	res.Stats.CapacityRetries = retries
	res.Stats.MapFallback = fellBack
	res.Stats.PreHullBlocks = phBlocks
	res.Stats.PreHullKept = phKept
	out = &HullDResult{Stats: res.Stats}
	for _, f := range res.Facets {
		ff := Facet{Vertices: make([]int, len(f.Verts))}
		for i, v := range f.Verts {
			ff.Vertices[i] = mapBack(v, order)
		}
		out.Facets = append(out.Facets, ff)
	}
	for _, v := range res.Vertices {
		out.Vertices = append(out.Vertices, mapBack(v, order))
	}
	return out, nil
}

// Hull3D computes the convex hull of 3D points (a convenience wrapper
// around HullD that validates the dimension).
func Hull3D(pts []Point, opt *Options) (*HullDResult, error) {
	if len(pts) > 0 && len(pts[0]) != 3 {
		return nil, fmt.Errorf("%w: Hull3D needs 3D points, got dimension %d", ErrBadOption, len(pts[0]))
	}
	return HullD(pts, opt)
}
