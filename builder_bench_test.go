package parhull

import (
	"testing"
)

// BenchmarkBuilderSteadyState measures the steady-state cost of a reused
// Builder on the headline perf workload (3d-ball-100k, counters off, direct
// path) — the allocs/op here is the number the CI reuse gate bounds. The
// first Build (pool construction, high-water growth) runs outside the timer.
func BenchmarkBuilderSteadyState(b *testing.B) {
	pts := RandomPoints(100_000, 3, 42)
	bld := NewBuilder(&Options{NoCounters: true, PreHull: PreHullOff})
	defer bld.Close()
	if _, err := bld.Build(pts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHullDOneShot is the same workload through the one-shot entry
// point, for the first-build-vs-steady-state comparison in EXPERIMENTS.md.
func BenchmarkHullDOneShot(b *testing.B) {
	pts := RandomPoints(100_000, 3, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HullD(pts, &Options{NoCounters: true, PreHull: PreHullOff}); err != nil {
			b.Fatal(err)
		}
	}
}
