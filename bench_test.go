// Benchmarks mirroring the experiments of EXPERIMENTS.md, one per
// theorem/figure of the paper. Custom metrics report the quantities the
// theorems bound: depth/H_n (Theorem 1.1), rounds (Theorem 5.3), the
// par/seq visibility-test ratio (Theorem 5.4), and the Theorem 3.1 conflict
// ratio. Run with: go test -bench=. -benchmem
package parhull_test

import (
	"fmt"
	"testing"

	"parhull"
	"parhull/internal/baseline"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
	"parhull/internal/stats"
)

// E1 — dependence depth of the parallel construction (Theorem 1.1).
func BenchmarkDepth2D(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := pointgen.OnCircle(pointgen.NewRNG(int64(n)), n)
			var depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := hull2d.Par(pts, &hull2d.Options{NoCounters: true})
				if err != nil {
					b.Fatal(err)
				}
				depth = res.Stats.MaxDepth
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(depth)/stats.Harmonic(n), "depth/H_n")
		})
	}
}

func BenchmarkDepth3D(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := pointgen.OnSphere(pointgen.NewRNG(int64(n)), n, 3)
			var depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := hulld.Par(pts, &hulld.Options{NoCounters: true})
				if err != nil {
					b.Fatal(err)
				}
				depth = res.Stats.MaxDepth
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(depth)/stats.Harmonic(n), "depth/H_n")
		})
	}
}

// E3 — recursion depth (rounds) of the round-synchronous schedule
// (Theorem 5.3).
func BenchmarkRounds2D(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := pointgen.OnCircle(pointgen.NewRNG(int64(n)), n)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := hull2d.Rounds(pts, &hull2d.Options{NoCounters: true})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// E4 — work ratio: parallel visibility tests / sequential visibility tests
// (Theorem 5.4 says exactly 1.0).
func BenchmarkWorkRatio2D(b *testing.B) {
	n := 20000
	pts := pointgen.OnCircle(pointgen.NewRNG(4), n)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := hull2d.Seq(pts)
		if err != nil {
			b.Fatal(err)
		}
		p, err := hull2d.Par(pts, nil)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(p.Stats.VisibilityTests) / float64(s.Stats.VisibilityTests)
	}
	b.ReportMetric(ratio, "par/seq-tests")
}

// E5 — total conflict size against the Theorem 3.1 bound (ratio < 1).
func BenchmarkConflictBound2D(b *testing.B) {
	n := 20000
	pts := pointgen.OnCircle(pointgen.NewRNG(5), n)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hull2d.Seq(pts)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, f := range res.Created {
			total += int64(len(f.Conf))
		}
		sizes := make([]float64, len(res.HullSizes))
		for j, h := range res.HullSizes {
			sizes[j] = float64(h)
		}
		ratio = float64(total) / stats.Theorem31Bound(2, sizes)
	}
	b.ReportMetric(ratio, "measured/bound")
}

// E6 — the Figure 1 trace.
func BenchmarkFigure1Trace(b *testing.B) {
	pts, base := parhull.Figure1Points()
	for i := 0; i < b.N; i++ {
		if _, _, err := parhull.Hull2DTrace(pts, base); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 — end-to-end engine comparison, plus the non-incremental baseline.
func BenchmarkHull2D(b *testing.B) {
	for _, cfg := range []struct {
		name string
		n    int
	}{{"disk", 100000}, {"circle", 100000}} {
		pts := workloadFor(cfg.name, cfg.n)
		b.Run(cfg.name+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hull2d.SeqFrom(pts, 3, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/par", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hull2d.Par(pts, &hull2d.Options{NoCounters: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/rounds", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := hull2d.Rounds(pts, &hull2d.Options{NoCounters: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/quickhull-baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.QuickHull2D(pts)
			}
		})
	}
}

func workloadFor(name string, n int) []parhull.Point {
	rng := pointgen.NewRNG(int64(n))
	if name == "disk" {
		return pointgen.UniformBall(rng, n, 2)
	}
	return pointgen.OnCircle(rng, n)
}

func BenchmarkHull3D(b *testing.B) {
	pts := pointgen.OnSphere(pointgen.NewRNG(6), 20000, 3)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hulld.SeqCounted(pts, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hulld.Par(pts, &hulld.Options{NoCounters: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A3 — the fork-join substrate head-to-head on the uniform-in-ball
	// workload (mostly interior points, so per-facet overheads dominate).
	// The facet output is identical (Theorem 5.5); steal should win on both
	// allocs/op (per-worker arenas) and ns/op (no goroutine spawn or
	// channel-semaphore round-trip per forked chain).
	ball := pointgen.Shuffled(pointgen.NewRNG(41), pointgen.UniformBall(pointgen.NewRNG(41), 100000, 3))
	for _, cfg := range []struct {
		name string
		kind sched.Kind
	}{{"ball100k/steal", sched.KindSteal}, {"ball100k/group", sched.KindGroup}} {
		kind := cfg.kind
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hulld.Par(ball, &hulld.Options{Sched: kind, NoCounters: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9 — half-space intersection via duality.
func BenchmarkHalfspaceDual(b *testing.B) {
	normals := append(parhull.HalfspaceBoundingSimplex(3),
		parhull.RandomSpherePoints(10000, 3, 7)...)
	var depth int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parhull.HalfspaceIntersection(normals, &parhull.Options{NoCounters: true})
		if err != nil {
			b.Fatal(err)
		}
		depth = res.Stats.MaxDepth
	}
	b.ReportMetric(float64(depth), "depth")
}

// E9 — unit-circle intersection boundary.
func BenchmarkCircleIntersection(b *testing.B) {
	centers := clusterCenters(64)
	for i := 0; i < b.N; i++ {
		if _, _, err := parhull.UnitCircleIntersection(centers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func clusterCenters(n int) []parhull.Point {
	rng := pointgen.NewRNG(8)
	out := make([]parhull.Point, n)
	for i := range out {
		out[i] = parhull.Point{0.4 * (rng.Float64() - 0.5), 0.4 * (rng.Float64() - 0.5)}
	}
	return out
}

// E10 lives in internal/conmap (BenchmarkRidgeMap*); this end-to-end variant
// swaps the map inside the full 2D engine.
func BenchmarkHull2DMapKinds(b *testing.B) {
	pts := pointgen.OnCircle(pointgen.NewRNG(9), 50000)
	for _, mk := range []struct {
		name string
		kind parhull.MapKind
	}{{"sharded", parhull.MapSharded}, {"cas", parhull.MapCAS}, {"tas", parhull.MapTAS}} {
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parhull.Hull2D(pts, &parhull.Options{Map: mk.kind, NoCounters: true})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
